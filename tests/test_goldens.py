"""Golden-graph regression suite.

``tests/goldens/`` pins the canonical export and fingerprint of every
built-in method's DAG over two fixed point sets (see
``tests/goldens/generate.py``).  These tests rebuild each graph and
require an *empty* structural diff and an exact fingerprint match, so a
refactor of the assembly (declarative or legacy) cannot silently
reshape the graph.  An intentional graph change regenerates with

    PYTHONPATH=src python tests/goldens/generate.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.dag import dag_fingerprint, diff_dags, export_dag

GOLDEN_DIR = Path(__file__).resolve().parent / "goldens"
sys.path.insert(0, str(GOLDEN_DIR))
import generate  # noqa: E402  (the golden workload definitions)

CELLS = [
    (m, k, ps)
    for m in generate.METHODS
    for k in generate.KERNELS
    for ps in generate.POINT_SETS
]


@pytest.fixture(scope="module")
def fingerprints():
    return json.loads((GOLDEN_DIR / "fingerprints.json").read_text())


@pytest.mark.parametrize("method,kernel,ps", CELLS)
def test_fingerprint_matches_golden(fingerprints, method, kernel, ps):
    _, dag = generate.build(method, kernel, ps)
    assert fingerprints[f"{method}/{kernel}/{ps}"] == dag_fingerprint(dag)


@pytest.mark.parametrize(
    "method,ps",
    [(m, ps) for m in generate.METHODS for ps in generate.POINT_SETS],
)
def test_rebuild_diffs_empty_against_export(method, ps):
    golden = json.loads((GOLDEN_DIR / f"{method}_{ps}.json").read_text())
    schema, dag = generate.build(method, "laplace", ps)
    d = diff_dags(golden, export_dag(dag, schema))
    assert d.empty, d.report()


def test_graph_is_kernel_independent(fingerprints):
    """The committed table itself certifies the kernel axis: for every
    method x point set, both kernels pinned the same fingerprint."""
    for method in generate.METHODS:
        for ps in generate.POINT_SETS:
            cells = {
                fingerprints[f"{method}/{k}/{ps}"] for k in generate.KERNELS
            }
            assert len(cells) == 1, (method, ps)


def test_goldens_cover_every_declared_operator():
    """Between the committed exports, every edge kind of every schema
    actually occurs - no operator class escapes the regression net."""
    from repro.dag import method_schema

    seen: set[str] = set()
    for method in generate.METHODS:
        for ps in generate.POINT_SETS:
            ex = json.loads((GOLDEN_DIR / f"{method}_{ps}.json").read_text())
            seen |= {row[0] for row in ex["edges"]}
    declared = set()
    for method in generate.METHODS:
        declared |= set(method_schema(method).ops)
    assert declared <= seen, declared - seen


def test_generate_check_mode_passes():
    exports, fps = generate.generate()
    assert generate.check(exports, fps) == []
