"""Cross-method oracle: every hierarchical method vs direct summation.

One shared random cloud (the session ``small_cloud`` fixture, 1500
sources and 1500 targets), one O(N^2) reference per kernel, and every
(method, kernel) combination checked against it.

Accuracy bounds
---------------
Measured max relative errors at p=10 expansions, operator fit
eps=1e-4, threshold 60, theta=0.5 (the configuration under test) are:

=============  ==========  ==========
method         laplace     yukawa
=============  ==========  ==========
fmm            ~4.5e-06    ~5.4e-06
fmm-basic      ~5.0e-06    ~5.8e-06
bh             ~2.5e-08    ~2.9e-08
=============  ==========  ==========

The FMM bound (1e-4) is set ~20x above the measurement and tracks the
operator-fit tolerance: compressed M2L/I2I translations dominate the
error.  Barnes-Hut at theta=0.5 never uses compressed translations
(leaf multipoles are evaluated directly at target points), so its error
is pure truncation at p=10 and sits orders of magnitude lower; its
bound (1e-6) is ~35x above the measurement.  A genuine operator or
expansion regression overshoots these margins immediately; ordinary
float jitter cannot.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dashmm.evaluator import DashmmEvaluator
from repro.hpx.runtime import RuntimeConfig
from repro.methods.direct import direct_potentials

#: documented per-(method, kernel) max-relative-error bounds (see above)
BOUNDS = {
    ("fmm", "laplace"): 1e-4,
    ("fmm-basic", "laplace"): 1e-4,
    ("bh", "laplace"): 1e-6,
    ("fmm", "yukawa"): 1e-4,
    ("fmm-basic", "yukawa"): 1e-4,
    ("bh", "yukawa"): 1e-6,
}


@pytest.fixture(scope="module")
def references(laplace, yukawa, small_cloud):
    sources, weights, targets = small_cloud
    return {
        "laplace": direct_potentials(laplace, targets, sources, weights),
        "yukawa": direct_potentials(yukawa, targets, sources, weights),
    }


def _rel_err(approx, exact):
    return np.max(np.abs(approx - exact)) / np.max(np.abs(exact))


@pytest.mark.parametrize("method", ["fmm", "fmm-basic", "bh"])
@pytest.mark.parametrize("kname", ["laplace", "yukawa"])
def test_method_matches_direct(
    method, kname, laplace, yukawa, laplace_factory, yukawa_factory,
    small_cloud, references,
):
    kernel, factory = {
        "laplace": (laplace, laplace_factory),
        "yukawa": (yukawa, yukawa_factory),
    }[kname]
    sources, weights, targets = small_cloud
    ev = DashmmEvaluator(
        kernel,
        method=method,
        threshold=60,
        factory=factory,
        runtime_config=RuntimeConfig(n_localities=2, workers_per_locality=2),
    )
    report = ev.evaluate(sources, weights, targets)
    err = _rel_err(report.potentials, references[kname])
    bound = BOUNDS[(method, kname)]
    assert err < bound, f"{method}/{kname}: rel err {err:.3e} >= {bound:.1e}"
    # the DAG drained completely: a silently hung evaluation would
    # produce zeros that might still pass a loose relative bound
    assert report.extras["untriggered"] == 0


def test_methods_agree_pairwise(laplace, laplace_factory, small_cloud):
    """All three hierarchical methods agree with each other within the
    sum of their direct-summation bounds (catches a reference error)."""
    sources, weights, targets = small_cloud
    results = {}
    for method in ("fmm", "fmm-basic", "bh"):
        ev = DashmmEvaluator(
            laplace, method=method, threshold=60, factory=laplace_factory
        )
        results[method] = ev.evaluate(sources, weights, targets).potentials
    scale = np.max(np.abs(results["bh"]))
    for a in results:
        for b in results:
            diff = np.max(np.abs(results[a] - results[b])) / scale
            assert diff < 2e-4, (a, b, diff)
