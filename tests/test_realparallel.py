"""Bit-identity oracle for the real-parallel backend.

``backend="parallel"`` must reproduce the simulator backend's
potentials *bit for bit* for the same configuration: LCO folds happen
in canonical dedup-key order and every batched flush groups by a
locality-including canonical key, so the floating-point reduction
order is a function of the DAG and the distribution alone - never of
which backend (or how many real processes) executed it.

These tests spawn worker processes; the ``parallel`` marker keeps them
out of the default lane (select with ``pytest -m parallel``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dashmm.evaluator import DashmmEvaluator
from repro.hpx.gas import ShmArena
from repro.hpx.runtime import Runtime, RuntimeConfig

pytestmark = pytest.mark.parallel

N_LOCALITIES = 2
THRESHOLD = 40


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(1234)
    n = 500
    return (
        rng.uniform(0.0, 1.0, size=(n, 3)),
        rng.normal(size=n),
        rng.uniform(0.0, 1.0, size=(n, 3)),
    )


def _pair(kernel, method, factory, backend, n_localities=N_LOCALITIES, **cfg_kw):
    return DashmmEvaluator(
        kernel,
        method=method,
        threshold=THRESHOLD,
        runtime_config=RuntimeConfig(
            n_localities=n_localities,
            policy="critical-path",
            backend=backend,
            **cfg_kw,
        ),
        factory=factory,
    )


@pytest.mark.parametrize("method", ["fmm", "fmm-basic", "bh"])
@pytest.mark.parametrize("kname", ["laplace", "yukawa"])
def test_bit_identical_to_simulator(kname, method, cloud, request):
    kernel = request.getfixturevalue(kname)
    factory = request.getfixturevalue(f"{kname}_factory")
    src, w, tgt = cloud
    ref = _pair(kernel, method, factory, "sim").evaluate(src, w, tgt)
    par = _pair(kernel, method, factory, "parallel").evaluate(src, w, tgt)
    assert par.potentials is not None
    assert np.array_equal(ref.potentials, par.potentials), (
        f"{kname}/{method}: parallel backend diverged from simulator "
        f"(max |d|={np.max(np.abs(ref.potentials - par.potentials)):.3e})"
    )
    assert par.runtime_stats["backend"] == "parallel"
    assert len(par.runtime_stats["workers"]) == N_LOCALITIES


def test_single_worker_matches_single_locality_sim(laplace, laplace_factory, cloud):
    src, w, tgt = cloud
    ref = _pair(laplace, "fmm", laplace_factory, "sim", n_localities=1).evaluate(
        src, w, tgt
    )
    par = _pair(laplace, "fmm", laplace_factory, "parallel", n_localities=1).evaluate(
        src, w, tgt
    )
    assert np.array_equal(ref.potentials, par.potentials)


def test_bit_identity_under_schedule_fuzz(laplace, laplace_factory, cloud):
    """Fuzzed per-worker schedule decisions must not move a single bit."""
    src, w, tgt = cloud
    ref = _pair(laplace, "fmm", laplace_factory, "sim").evaluate(src, w, tgt)
    par = _pair(
        laplace, "fmm", laplace_factory, "parallel", fuzz_schedule=99
    ).evaluate(src, w, tgt)
    assert np.array_equal(ref.potentials, par.potentials)


def test_parallel_run_leaves_no_segments(laplace, laplace_factory, cloud):
    src, w, tgt = cloud
    _pair(laplace, "bh", laplace_factory, "parallel").evaluate(src, w, tgt)
    assert ShmArena.leaked() == []


def test_runtime_rejects_parallel_backend_directly():
    with pytest.raises(ValueError, match="simulator engine"):
        Runtime(RuntimeConfig(backend="parallel"))


def test_invalid_backend_rejected():
    with pytest.raises(ValueError, match="backend"):
        RuntimeConfig(backend="mpi")


def test_parallel_rejects_simulator_only_modes(laplace, laplace_factory, cloud):
    src, w, tgt = cloud
    ev = _pair(laplace, "fmm", laplace_factory, "parallel", detect_hazards=True)
    with pytest.raises(ValueError, match="hazard"):
        ev.evaluate(src, w, tgt)
    ev = DashmmEvaluator(
        laplace,
        method="fmm",
        threshold=THRESHOLD,
        runtime_config=RuntimeConfig(backend="parallel"),
        factory=laplace_factory,
        batch_edges=False,
    )
    with pytest.raises(ValueError, match="batch_edges"):
        ev.evaluate(src, w, tgt)
    ev = DashmmEvaluator(
        laplace,
        method="fmm",
        threshold=THRESHOLD,
        runtime_config=RuntimeConfig(backend="parallel"),
        mode="phantom",
    )
    with pytest.raises(ValueError, match="phantom"):
        ev.evaluate(src, w, tgt)
