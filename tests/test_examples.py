"""Smoke tests: the shipped examples run end-to-end and pass their own
internal accuracy assertions."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(name: str, *args: str) -> str:
    out = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert out.returncode == 0, out.stderr
    return out.stdout


def test_quickstart():
    assert "OK" in _run("quickstart.py")


def test_screened_coulomb():
    assert "OK" in _run("screened_coulomb.py")


def test_custom_kernel():
    assert "OK" in _run("custom_kernel.py")


def test_gravity_barneshut():
    assert "OK" in _run("gravity_barneshut.py")


def test_scaling_study_small():
    out = _run("scaling_study.py", "20000")
    assert "strong scaling" in out
    assert "binary priorities" in out


def test_capacitance_solver():
    out = _run("capacitance_solver.py")
    assert "OK" in out
